// DFRS walkthrough: what does conventional batch scheduling cost on
// volatile resources, compared with the paper's fractional heuristics?
//
// Following "Dynamic Fractional Resource Scheduling vs. Batch Scheduling"
// (Casanova, Stillwell, Vivien), every task is submitted to the batch
// baselines as a rigid job holding an exclusive whole-worker reservation,
// killed and resubmitted when its worker crashes — no replication, no
// migration, no availability models. Both batch disciplines (FCFS and
// EASY backfilling) and the paper's schedulers then face the *same*
// availability trajectories, so the makespans are directly comparable.
package main

import (
	"fmt"
	"log"

	volatile "repro"
)

func main() {
	// One mid-grid instance first: same scenario, same trial seed — same
	// world for all four contenders.
	cell := volatile.Cell{Tasks: 20, Ncom: 10, Wmin: 3}
	scn := volatile.NewScenario(42, cell, volatile.ScenarioOptions{})

	fmt.Println("One instance, four schedulers, identical availability trajectories:")
	for _, name := range []string{"emct*", "mct", volatile.BatchEASY, volatile.BatchFCFS} {
		var res *volatile.RunResult
		var err error
		if name == volatile.BatchEASY || name == volatile.BatchFCFS {
			res, err = scn.RunBatch(name, 1)
		} else {
			res, err = scn.Run(name, 1)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s %4d slots for %d iterations\n",
			name, res.Makespan, len(res.IterationEnds))
	}

	// Then a small comparison sweep: the dfb metric ranks the batch
	// disciplines against a fractional delegation over many instances,
	// with the per-instance best taken over BOTH families.
	fmt.Println("\nComparison sweep (3 cells × 4 scenarios × 3 trials):")
	res, err := volatile.CompareSweep(volatile.CompareConfig{
		Cells: []volatile.Cell{
			{Tasks: 5, Ncom: 5, Wmin: 2},
			{Tasks: 20, Ncom: 10, Wmin: 3},
			{Tasks: 40, Ncom: 20, Wmin: 5},
		},
		Heuristics: []string{"emct*", "mct", "random2w"},
		Scenarios:  4,
		Trials:     3,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-11s %12s %7s\n", "algorithm", "avg dfb (%)", "wins")
	for _, row := range res.Overall {
		fmt.Printf("  %-11s %12.2f %7d\n", row.Name, row.AvgDFB, row.Wins)
	}

	fmt.Println("\nPer-cell gap (positive = batch trails the best fractional heuristic):")
	for _, row := range volatile.CompareCells(res) {
		fmt.Printf("  %-22s fractional %-9s %7.2f   batch %-11s %7.2f   gap %+8.2f\n",
			row.Cell, row.BestFractional, row.FractionalDFB,
			row.BestBatch, row.BatchDFB, row.Gap)
	}

	fmt.Println("\nReading the numbers: batch reservations pay for volatility three")
	fmt.Println("times — idle reservations while a worker is RECLAIMED, full restarts")
	fmt.Println("on every crash, and head-of-line blocking (FCFS) that EASY only")
	fmt.Println("partially recovers. The fractional heuristics avoid all three by")
	fmt.Println("replicating tasks and consulting per-worker availability models.")
}
