// Contention: how the master's limited bandwidth reshapes the heuristic
// ranking (the paper's Table 3).
//
// The base experiments are compute-dominated, so accounting for network
// contention barely matters. This example rescales communication volumes
// (×1, ×5, ×10, as in Table 3) on the n=20/ncom=5/wmin=1 cell and shows the
// crossover: as scenarios become communication-intensive, the
// contention-corrected * heuristics overtake their plain counterparts.
package main

import (
	"fmt"
	"log"

	volatile "repro"
	"repro/internal/report"
)

func main() {
	heuristics := []string{"mct", "mct*", "emct", "emct*", "ud", "ud*", "lw", "lw*"}

	type outcome struct {
		scale int
		rows  []volatile.TableRow
	}
	var outcomes []outcome
	for _, scale := range []int{1, 5, 10} {
		res, err := volatile.RunSweep(volatile.SweepConfig{
			Cells:      []volatile.Cell{volatile.ContentionCell()},
			Heuristics: heuristics,
			Scenarios:  20,
			Trials:     5,
			Seed:       7,
			Options:    volatile.ScenarioOptions{CommScale: scale},
		})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{scale, res.Overall})
	}

	for _, oc := range outcomes {
		fmt.Printf("communication ×%d (n=20, ncom=5, wmin=1):\n", oc.scale)
		tb := report.NewTable("Algorithm", "Average dfb")
		for _, row := range oc.rows {
			tb.AddRow(row.Name, fmt.Sprintf("%.2f", row.AvgDFB))
		}
		fmt.Print(tb.String())
		fmt.Println()
	}

	// Quantify the effect of the correcting factor pair by pair.
	fmt.Println("gain of the contention-correcting factor (plain dfb − starred dfb):")
	tb := report.NewTable("pair", "x1", "x5", "x10")
	for _, base := range []string{"mct", "emct", "ud", "lw"} {
		row := []string{base + " vs " + base + "*"}
		for _, oc := range outcomes {
			row = append(row, fmt.Sprintf("%+.2f", dfbOf(oc.rows, base)-dfbOf(oc.rows, base+"*")))
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())
	fmt.Println("\npositive numbers mean the starred variant is better; the paper's")
	fmt.Println("finding is that the gain grows with communication intensity and the")
	fmt.Println("correction never hurts in compute-dominated settings.")
}

func dfbOf(rows []volatile.TableRow, name string) float64 {
	for _, r := range rows {
		if r.Name == name {
			return r.AvgDFB
		}
	}
	return 0
}
