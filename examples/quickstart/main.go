// Quickstart: draw one volatile-platform scenario, run a single heuristic,
// and inspect the result — the smallest possible end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	volatile "repro"
)

func main() {
	// A mid-grid scenario from the paper's Table 1: 20 tasks per iteration,
	// the master can serve 10 workers at once, task durations scale with
	// wmin=3 (processor speeds are drawn from [3, 30], Tdata=3, Tprog=15).
	scn := volatile.NewScenario(42,
		volatile.Cell{Tasks: 20, Ncom: 10, Wmin: 3},
		volatile.ScenarioOptions{})

	fmt.Print(scn.Describe())

	// Run the paper's overall-best heuristic, EMCT*: expected minimum
	// completion time with the contention-correcting factor.
	res, err := scn.Run("emct*", 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nemct* finished %d iterations in %d slots\n",
		len(res.IterationEnds), res.Makespan)
	fmt.Printf("iteration ends: %v\n", res.IterationEnds)
	fmt.Printf("crashes survived: %d, task replicas launched: %d\n",
		res.Stats.Crashes, res.Stats.ReplicasStarted)
	fmt.Printf("compute slots: %d total, %d wasted to volatility\n",
		res.Stats.ComputeSlots, res.Stats.WastedComputeSlots)

	// Compare with plain MCT (reliability-blind) on the same world: both
	// runs see identical availability trajectories because they share the
	// scenario and trial seed.
	mct, err := scn.Run("mct", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmct on the same instance: %d slots", mct.Makespan)
	switch {
	case mct.Makespan > res.Makespan:
		fmt.Printf(" (emct* wins by %.1f%%)\n",
			100*float64(mct.Makespan-res.Makespan)/float64(res.Makespan))
	case mct.Makespan < res.Makespan:
		fmt.Printf(" (mct wins by %.1f%%)\n",
			100*float64(res.Makespan-mct.Makespan)/float64(mct.Makespan))
	default:
		fmt.Println(" (tie)")
	}
}
