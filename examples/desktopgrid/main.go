// Desktopgrid: an enterprise desktop-grid campaign — the motivating workload
// of the paper's introduction. A department wants to run a 10-iteration
// mesh-solver overnight on 20 employee desktops that get reclaimed by their
// owners and occasionally crash. Which scheduling policy should the master
// use?
//
// This example runs all seventeen heuristics over a small sweep of random
// platforms and prints a Table 2-style ranking (average degradation from
// best + wins), demonstrating the paper's headline finding: the
// failure-aware greedy heuristics (EMCT/UD/LW families) dominate the
// reliability-blind and random policies.
package main

import (
	"fmt"
	"log"
	"os"

	volatile "repro"
	"repro/internal/report"
)

func main() {
	// Overnight campaign: 20 tasks per iteration on 20 desktops; the
	// office network lets the master feed 10 workers at once. wmin=5 puts
	// task durations in the range where owner reclaims genuinely hurt.
	cfg := volatile.SweepConfig{
		Cells:     []volatile.Cell{{Tasks: 20, Ncom: 10, Wmin: 5}},
		Scenarios: 12, // 12 random office platforms
		Trials:    5,  // 5 nights each
		Seed:      2026,
		Progress: func(done, total int) {
			if done%20 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsimulated %d/%d nights", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		},
	}

	res, err := volatile.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndesktop-grid campaign: %d instances (platform × night), all 17 policies\n\n",
		res.Instances)
	tb := report.NewTable("rank", "policy", "avg dfb (%)", "wins")
	for i, row := range res.Overall {
		tb.AddRow(fmt.Sprintf("%d", i+1), row.Name,
			fmt.Sprintf("%.2f", row.AvgDFB), fmt.Sprintf("%d", row.Wins))
	}
	fmt.Print(tb.String())

	best := res.Overall[0]
	var worstGreedy, bestRandom volatile.TableRow
	for _, row := range res.Overall {
		if len(row.Name) >= 6 && row.Name[:6] == "random" && bestRandom.Name == "" {
			bestRandom = row
		}
	}
	for i := len(res.Overall) - 1; i >= 0; i-- {
		if name := res.Overall[i].Name; len(name) < 6 || name[:6] != "random" {
			worstGreedy = res.Overall[i]
			break
		}
	}
	fmt.Printf("\nbest policy: %s (%.2f%% from best on average)\n", best.Name, best.AvgDFB)
	fmt.Printf("even the worst greedy policy (%s, %.2f%%) beats the best random policy (%s, %.2f%%)\n",
		worstGreedy.Name, worstGreedy.AvgDFB, bestRandom.Name, bestRandom.AvgDFB)
}
