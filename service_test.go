package volatile

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestNegativeCheckpointEveryRejected pins the PR 9 bugfix: a negative
// cadence used to fall through the `Every > 0` guard and silently run with
// the default interval; now every sweep flavour rejects it up front.
func TestNegativeCheckpointEveryRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")

	cfg := resumeTestConfig()
	cfg.Checkpoint = &CheckpointConfig{Path: path, Every: -3}
	if _, err := RunSweep(cfg); err == nil || !strings.Contains(err.Error(), "Every must be >= 0") {
		t.Fatalf("RunSweep with Every=-3 returned %v, want the negative-cadence error", err)
	}

	tcfg := TraceSweepConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
		Heuristics: []string{"emct", "mct*"},
		Scenarios:  1,
		Trials:     1,
		TraceLen:   100,
		Style:      TraceWeibull,
		Checkpoint: &CheckpointConfig{Path: path, Every: -1},
	}
	if _, err := TraceSweep(tcfg); err == nil || !strings.Contains(err.Error(), "Every must be >= 0") {
		t.Fatalf("TraceSweep with Every=-1 returned %v, want the negative-cadence error", err)
	}

	ccfg := CompareConfig{
		Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
		Heuristics: []string{"emct", "mct*"},
		Scenarios:  1,
		Trials:     1,
		Checkpoint: &CheckpointConfig{Path: path, Every: -1},
	}
	if _, err := CompareSweep(ccfg); err == nil || !strings.Contains(err.Error(), "Every must be >= 0") {
		t.Fatalf("CompareSweep with Every=-1 returned %v, want the negative-cadence error", err)
	}
}

// TestConfigDigestMatchesCheckpointBinding pins the service cache-key
// contract for all three sweep flavours: ConfigDigest computes, without
// running anything, exactly the digest the checkpoint layer stamps into the
// file — so a result cache keyed on ConfigDigest is coherent with resume.
func TestConfigDigestMatchesCheckpointBinding(t *testing.T) {
	t.Run("runsweep", func(t *testing.T) {
		cfg := resumeTestConfig()
		want, err := cfg.ConfigDigest()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "run.ckpt")
		cfg.Checkpoint = &CheckpointConfig{Path: path}
		if _, err := RunSweep(cfg); err != nil {
			t.Fatal(err)
		}
		st, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.ConfigDigest != want {
			t.Fatalf("checkpoint bound to %s, ConfigDigest says %s", st.ConfigDigest, want)
		}
	})
	t.Run("tracesweep", func(t *testing.T) {
		cfg := TraceSweepConfig{
			Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
			Heuristics: []string{"emct", "mct*"},
			Scenarios:  1,
			Trials:     1,
			TraceLen:   100,
			Style:      TraceWeibull,
			Seed:       9,
		}
		want, err := cfg.ConfigDigest()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "trace.ckpt")
		cfg.Checkpoint = &CheckpointConfig{Path: path}
		if _, err := TraceSweep(cfg); err != nil {
			t.Fatal(err)
		}
		st, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.ConfigDigest != want {
			t.Fatalf("checkpoint bound to %s, ConfigDigest says %s", st.ConfigDigest, want)
		}
	})
	t.Run("comparesweep", func(t *testing.T) {
		cfg := CompareConfig{
			Cells:      []Cell{{Tasks: 5, Ncom: 5, Wmin: 1}},
			Heuristics: []string{"emct", "mct*"},
			Scenarios:  1,
			Trials:     1,
			Seed:       9,
		}
		want, err := cfg.ConfigDigest()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "cmp.ckpt")
		cfg.Checkpoint = &CheckpointConfig{Path: path}
		if _, err := CompareSweep(cfg); err != nil {
			t.Fatal(err)
		}
		st, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.ConfigDigest != want {
			t.Fatalf("checkpoint bound to %s, ConfigDigest says %s", st.ConfigDigest, want)
		}
	})
}

// TestReadCheckpointPartialIsBitExact pins the partial-aggregate contract:
// a checkpoint written at completion restores to a SweepResult that formats
// (and therefore digests) identically to the result the sweep returned, and
// its progress counters report the full chunk range.
func TestReadCheckpointPartialIsBitExact(t *testing.T) {
	cfg := resumeTestConfig()
	path := filepath.Join(t.TempDir(), "done.ckpt")
	cfg.Checkpoint = &CheckpointConfig{Path: path}
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedChunks != st.Chunks || st.Chunks != len(cfg.Cells)*cfg.Scenarios {
		t.Fatalf("completed checkpoint reports %d/%d chunks, want %d/%d",
			st.CommittedChunks, st.Chunks, len(cfg.Cells)*cfg.Scenarios, len(cfg.Cells)*cfg.Scenarios)
	}
	if st.Partial.Instances != res.Instances {
		t.Fatalf("Partial.Instances = %d, want %d", st.Partial.Instances, res.Instances)
	}
	if st.Partial.Digest() != res.Digest() {
		t.Fatalf("completed-checkpoint partial drifted from the returned result:\n got  %s\n want %s",
			st.Partial.Digest(), res.Digest())
	}
}

// TestReadCheckpointMidSweep pins the streaming view: a checkpoint captured
// mid-sweep restores a strict-prefix partial whose instance count matches
// the committed chunks.
func TestReadCheckpointMidSweep(t *testing.T) {
	cfg := resumeTestConfig()
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	cfg.Workers = 1
	cfg.Checkpoint = &CheckpointConfig{Path: path, Every: 1}

	stop := make(chan struct{})
	closed := false
	cfg.Stop = stop
	cfg.Progress = func(done, total int) {
		if !closed && done >= total/2 {
			closed = true
			close(stop)
		}
	}
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("stopped sweep returned no error")
	}

	st, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedChunks <= 0 || st.CommittedChunks >= st.Chunks {
		t.Fatalf("mid-sweep checkpoint covers %d/%d chunks, want a strict prefix", st.CommittedChunks, st.Chunks)
	}
	// Each chunk is one (cell, scenario) pair = Trials instances.
	if want := st.CommittedChunks * cfg.Trials; st.Partial.Instances != want {
		t.Fatalf("Partial.Instances = %d, want %d (%d chunks x %d trials)",
			st.Partial.Instances, want, st.CommittedChunks, cfg.Trials)
	}
	if len(st.Partial.Overall) == 0 {
		t.Fatal("mid-sweep partial has no Overall rows")
	}
}
