package volatile

// Crash-safe sweeps. A sweep with a CheckpointConfig periodically persists
// the committer's exact running state (internal/checkpoint) at chunk
// boundaries; a killed process resumes from the watermark and produces
// output bit-identical to an uninterrupted run. The checkpoint is bound to
// a canonical config digest so stale or mismatched state can never be
// resumed into the wrong sweep.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultCheckpointEvery is the default chunk interval between checkpoint
// writes when CheckpointConfig.Every is zero.
const DefaultCheckpointEvery = 16

// CheckpointConfig enables crash-safe sweeps: the sweep committer persists
// its state to Path every Every committed chunks (atomically: a crash
// mid-write leaves the previous checkpoint intact), plus once more when the
// sweep finishes or is interrupted.
type CheckpointConfig struct {
	// Path is the checkpoint file location (required).
	Path string
	// Every is the chunk interval between periodic checkpoint writes
	// (default DefaultCheckpointEvery). Smaller values lose less work on a
	// crash and cost more I/O. Negative values are rejected up front — a
	// typo must not silently change the checkpoint cadence.
	Every int
	// Resume, when true, loads Path before sweeping and skips the chunks it
	// records as committed. A checkpoint whose config digest or chunk count
	// does not match the sweep is rejected; a missing file starts the sweep
	// from scratch (so a resume command is safe to run unconditionally).
	Resume bool
}

// InterruptedError reports a sweep stopped gracefully through its Stop
// channel: the final checkpoint holds every committed chunk, and rerunning
// the same config with Checkpoint.Resume continues from there.
type InterruptedError struct {
	// Path is the checkpoint file holding the committed state ("" when the
	// sweep was stopped without a checkpoint configured).
	Path string
	// Committed and Chunks report resume progress: chunks [0, Committed)
	// of Chunks are persisted.
	Committed, Chunks int
}

func (e *InterruptedError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("volatile: sweep interrupted after %d/%d chunks (no checkpoint configured; progress lost)",
			e.Committed, e.Chunks)
	}
	return fmt.Sprintf("volatile: sweep interrupted after %d/%d chunks; checkpoint %s holds the committed state (resume with Checkpoint.Resume)",
		e.Committed, e.Chunks, e.Path)
}

// sweepConfigDigest canonicalizes everything that determines a sweep's
// numeric output into a SHA-256 hex digest. Execution knobs that cannot
// change the result — Workers, Progress, checkpoint placement, retry
// policy, fault plans — are deliberately excluded, so a sweep may be
// resumed under different parallelism or with fault injection removed.
func sweepConfigDigest(flavour string, cells []Cell, heuristics []string,
	scenarios, trials int, opt ScenarioOptions, mode Mode, seed uint64, extra ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep-config v1\nflavour %s\nseed %d\nmode %s\nscenarios %d\ntrials %d\n",
		flavour, seed, mode, scenarios, trials)
	fmt.Fprintf(h, "options %d %d %d %d %d\n",
		opt.Processors, opt.Iterations, opt.CommScale, opt.MaxReplicas, opt.MaxSlots)
	fmt.Fprintf(h, "cells %d\n", len(cells))
	for _, c := range cells {
		fmt.Fprintf(h, "cell %d %d %d\n", c.Tasks, c.Ncom, c.Wmin)
	}
	fmt.Fprintf(h, "heuristics %d\n", len(heuristics))
	for _, name := range heuristics {
		fmt.Fprintf(h, "h %s\n", name)
	}
	for _, e := range extra {
		fmt.Fprintf(h, "extra %s\n", e)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// traceSetDigests hashes the content of each recorded trace set, so a
// resumed trace sweep refuses checkpoints taken against different traces
// even when the file paths match.
func traceSetDigests(sets []*trace.Set) ([]string, error) {
	out := make([]string, len(sets))
	for i, set := range sets {
		h := sha256.New()
		if err := set.Write(h); err != nil {
			return nil, fmt.Errorf("volatile: hashing trace set %d: %w", i, err)
		}
		out[i] = "tracefile " + hex.EncodeToString(h.Sum(nil))
	}
	return out, nil
}

// aggKeyWmin / aggKeyCell name the keyed aggregates inside a checkpoint.
func aggKeyWmin(wmin int) string { return fmt.Sprintf("wmin %d", wmin) }

func aggKeyCell(c Cell) string {
	return fmt.Sprintf("cell %d %d %d", c.Tasks, c.Ncom, c.Wmin)
}

// buildSnapshot captures the committer's aggregates at a chunk boundary.
func buildSnapshot(digest string, chunks, next, censored, failed int,
	overall *stats.Aggregator, byWmin map[int]*stats.Aggregator, byCell map[Cell]*stats.Aggregator) *checkpoint.Snapshot {
	s := &checkpoint.Snapshot{
		ConfigDigest: digest,
		Chunks:       chunks,
		NextChunk:    next,
		Censored:     censored,
		Failed:       failed,
		Overall:      overall.State(),
		Keyed:        make(map[string]stats.AggregatorState, len(byWmin)+len(byCell)),
	}
	for wmin, agg := range byWmin {
		s.Keyed[aggKeyWmin(wmin)] = agg.State()
	}
	for cell, agg := range byCell {
		s.Keyed[aggKeyCell(cell)] = agg.State()
	}
	return s
}

// restoreSnapshot rebuilds the committer's aggregates from a validated
// snapshot. The caller has already checked digest and chunk count; here
// only the keyed-aggregate names must parse.
func restoreSnapshot(s *checkpoint.Snapshot) (overall *stats.Aggregator,
	byWmin map[int]*stats.Aggregator, byCell map[Cell]*stats.Aggregator, err error) {
	overall = stats.FromState(s.Overall)
	byWmin = make(map[int]*stats.Aggregator)
	byCell = make(map[Cell]*stats.Aggregator)
	for key, st := range s.Keyed {
		var wmin int
		var cell Cell
		if n, _ := fmt.Sscanf(key, "wmin %d", &wmin); n == 1 {
			byWmin[wmin] = stats.FromState(st)
			continue
		}
		if n, _ := fmt.Sscanf(key, "cell %d %d %d", &cell.Tasks, &cell.Ncom, &cell.Wmin); n == 3 {
			byCell[cell] = stats.FromState(st)
			continue
		}
		return nil, nil, nil, fmt.Errorf("volatile: checkpoint has unknown aggregate key %q", key)
	}
	return overall, byWmin, byCell, nil
}

// Format renders every field of the sweep's numeric output deterministically
// and at full float precision: heuristic rows overall, per wmin (ascending)
// and per cell (ordered by Tasks, Ncom, Wmin). Two sweeps produce equal
// Format output iff their results are bit-identical, which makes it the
// anchor for golden digests and crash/resume equivalence checks. Robustness
// bookkeeping (FailedInstances, InstanceErrors, Warnings) is deliberately
// excluded: a retried-and-recovered sweep formats identically to an
// undisturbed one.
func (res *SweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instances=%d censored=%d\n", res.Instances, res.Censored)
	writeRows := func(label string, rows []TableRow) {
		fmt.Fprintf(&b, "[%s]\n", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%s %s %d\n", r.Name, strconv.FormatFloat(r.AvgDFB, 'g', -1, 64), r.Wins)
		}
	}
	writeRows("overall", res.Overall)
	wmins := make([]int, 0, len(res.ByWmin))
	for w := range res.ByWmin {
		wmins = append(wmins, w)
	}
	sort.Ints(wmins)
	for _, w := range wmins {
		writeRows(fmt.Sprintf("wmin=%d", w), res.ByWmin[w])
	}
	cells := make([]Cell, 0, len(res.ByCell))
	for c := range res.ByCell {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Tasks != cells[j].Tasks {
			return cells[i].Tasks < cells[j].Tasks
		}
		if cells[i].Ncom != cells[j].Ncom {
			return cells[i].Ncom < cells[j].Ncom
		}
		return cells[i].Wmin < cells[j].Wmin
	})
	for _, c := range cells {
		writeRows(c.String(), res.ByCell[c])
	}
	return b.String()
}

// Digest is the SHA-256 hex of Format — the sweep's result fingerprint.
// Equal digests mean bit-identical numeric output; it is what the golden
// tests pin and what `volabench -digest` prints for crash/resume checks.
func (res *SweepResult) Digest() string {
	sum := sha256.Sum256([]byte(res.Format()))
	return hex.EncodeToString(sum[:])
}
